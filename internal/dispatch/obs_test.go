package dispatch

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"perfiso/internal/experiments"
	"perfiso/internal/obs"
	"perfiso/internal/shard"
)

// metricValue resolves a rendered metric by name (and optional worker
// label) from a Metrics() snapshot.
func metricValue(t *testing.T, ms []obs.Metric, name, worker string) float64 {
	t.Helper()
	for _, m := range ms {
		if m.Name != name {
			continue
		}
		if worker != "" && m.Labels["worker"] != worker {
			continue
		}
		return m.Value
	}
	t.Fatalf("metric %s{worker=%q} not rendered", name, worker)
	return 0
}

// TestDispatchObservability is the observability acceptance property:
// a dispatched multi-worker run produces a trace covering every
// executed unit exactly once, and the /metrics values match the run's
// timing.json dispatch section because both read the same books.
func TestDispatchObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	spec := experiments.TestSpec()
	reg := experiments.DefaultRegistry()
	runner, err := shard.NewUnitRunner(reg, spec, dispatchFilter)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecording()
	tracer := obs.NewTraceBuffer()
	c, err := NewCoordinator(runner.Manifest, Options{Tracker: rec, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := &Worker{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("w-%d", i),
			Runner:      runner,
			Client:      srv.Client(),
			Tracker:     rec,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(context.Background()); err != nil {
				t.Errorf("%s: %v", w.Name, err)
			}
		}()
	}
	wg.Wait()
	select {
	case <-c.Done():
	default:
		t.Fatal("workers exited with the run incomplete")
	}

	units := runner.Units()
	dt := c.Timing()

	// Every executed unit appears in the trace exactly once, fully
	// labeled.
	spans := tracer.Spans()
	if len(spans) != len(units) {
		t.Fatalf("trace has %d spans, manifest has %d units", len(spans), len(units))
	}
	seen := map[string]bool{}
	for _, s := range spans {
		if _, ok := runner.Unit(s.Unit); !ok {
			t.Errorf("span names unknown unit %q", s.Unit)
		}
		if seen[s.Unit] {
			t.Errorf("unit %s traced twice", s.Unit)
		}
		seen[s.Unit] = true
		if s.Worker == "" || s.Experiment == "" || s.Cell == "" {
			t.Errorf("span missing labels: %+v", s)
		}
		if s.DurationMs < 0 {
			t.Errorf("span duration negative: %+v", s)
		}
	}

	// The per-unit timing breakdown also covers everything.
	if len(dt.UnitTimings) != len(units) {
		t.Fatalf("timing has %d unit rows, want %d", len(dt.UnitTimings), len(units))
	}
	for _, u := range dt.UnitTimings {
		if u.Worker == "" || u.Attempts < 1 {
			t.Errorf("unit timing missing attribution: %+v", u)
		}
	}

	// /metrics and timing.json are views of the same book-keeping.
	ms := c.Metrics()
	claims := 0
	for _, w := range dt.Workers {
		claims += w.Claims
	}
	for _, want := range []struct {
		name  string
		value float64
	}{
		{"perfiso_dispatch_units", float64(dt.Units)},
		{"perfiso_dispatch_units_done", float64(dt.Units)},
		{"perfiso_dispatch_units_pending", 0},
		{"perfiso_dispatch_units_leased", 0},
		{"perfiso_dispatch_claims_total", float64(claims)},
		{"perfiso_dispatch_steals_total", float64(dt.Steals)},
		{"perfiso_dispatch_lease_expiries_total", float64(dt.Requeues)},
		{"perfiso_dispatch_stale_uploads_total", float64(dt.StaleUploads)},
	} {
		if got := metricValue(t, ms, want.name, ""); got != want.value {
			t.Errorf("%s = %v, timing says %v", want.name, got, want.value)
		}
	}
	for _, w := range dt.Workers {
		if got := metricValue(t, ms, "perfiso_dispatch_worker_units", w.Worker); got != float64(w.Units) {
			t.Errorf("worker_units{%s} = %v, timing says %d", w.Worker, got, w.Units)
		}
	}

	// The shared recording tracker agrees: one accepted upload (and so
	// one latency sample) per unit, one Claim per granted lease.
	s := rec.Snapshot()
	if s.DispatchUploads != uint64(len(units)) {
		t.Errorf("recording counted %d uploads, want %d", s.DispatchUploads, len(units))
	}
	if s.DispatchClaims != uint64(claims) {
		t.Errorf("recording counted %d claims, timing says %d", s.DispatchClaims, claims)
	}
	if s.DispatchUploadMaxSeconds < s.DispatchUploadMeanSeconds {
		t.Errorf("upload max %v < mean %v", s.DispatchUploadMaxSeconds, s.DispatchUploadMeanSeconds)
	}
}
