package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"perfiso/internal/obs"
	"perfiso/internal/shard"
)

// Worker pulls units from a coordinator and executes them through a
// shard.UnitRunner: claim, heartbeat while running, upload, repeat,
// until the coordinator reports the run done or failed.
type Worker struct {
	// Coordinator is the base URL ("http://host:port").
	Coordinator string
	// Name identifies the worker in leases and timing.
	Name string
	// Runner executes claimed units; its manifest hash must match the
	// coordinator's (Run verifies).
	Runner *shard.UnitRunner
	// Client is the HTTP client; nil uses a default with sane
	// timeouts.
	Client *http.Client
	// OnUnit, when set, is called after each completed unit, from this
	// worker's goroutine — a callback shared across workers must
	// synchronize internally.
	OnUnit func(experiment, cell string, elapsed time.Duration)
	// Tracker observes upload latencies. Nil means the process-wide
	// default at first use.
	Tracker obs.Tracker

	// Units counts accepted uploads; Stale counts rejected ones.
	Units, Stale int
}

// transientRetries is how often a worker retries a request that failed
// at the transport layer (coordinator restarting, network blip) before
// giving up. Retries back off linearly up to transientBackoffCap.
const (
	transientRetries    = 20
	transientBackoffCap = 2 * time.Second
)

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// postJSON posts body and decodes the response into out, retrying
// transport errors. Non-2xx statuses are returned as *httpError with
// the decoded error message, not retried.
func (w *Worker) postJSON(ctx context.Context, path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var last error
	for attempt := 0; attempt < transientRetries; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(attempt) * 100 * time.Millisecond
			if backoff > transientBackoffCap {
				backoff = transientBackoffCap
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff): //perfiso:allow walltime retry backoff between real HTTP attempts
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(blob))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client().Do(req)
		if err != nil {
			last = err
			continue
		}
		err = decodeResponse(resp, out)
		var he *httpError
		if errors.As(err, &he) && he.Status >= 500 {
			last = err
			continue
		}
		return err
	}
	return fmt.Errorf("dispatch: %s unreachable after %d attempts: %w", w.Coordinator+path, transientRetries, last)
}

// httpError is a non-2xx protocol answer.
type httpError struct {
	Status int
	Msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("dispatch: coordinator answered %d: %s", e.Status, e.Msg)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var fail uploadResponse
		msg := strings.TrimSpace(string(blob))
		if json.Unmarshal(blob, &fail) == nil && fail.Error != "" {
			msg = fail.Error
		}
		return &httpError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

// FetchManifest downloads the manifest a coordinator is serving,
// retrying briefly so workers may start before the coordinator binds.
func FetchManifest(ctx context.Context, client *http.Client, base string) (shard.Manifest, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	var last error
	for attempt := 0; attempt < transientRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return shard.Manifest{}, ctx.Err()
			case <-time.After(500 * time.Millisecond): //perfiso:allow walltime retry backoff between real HTTP attempts
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/manifest", nil)
		if err != nil {
			return shard.Manifest{}, err
		}
		resp, err := client.Do(req)
		if err != nil {
			last = err
			continue
		}
		var m shard.Manifest
		if err := decodeResponse(resp, &m); err != nil {
			last = err
			continue
		}
		return m, nil
	}
	return shard.Manifest{}, fmt.Errorf("dispatch: fetching manifest from %s: %w", base, last)
}

// Run executes the claim loop until the run completes ("done"), the
// coordinator reports failure, or ctx is cancelled. A completed run
// returns nil even if some of this worker's uploads were stale.
func (w *Worker) Run(ctx context.Context) error {
	if w.Runner == nil {
		return fmt.Errorf("dispatch: worker %s has no runner", w.Name)
	}
	if w.Runner.Manifest.Hash == "" {
		return fmt.Errorf("dispatch: worker %s runner has no manifest hash", w.Name)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var claim claimResponse
		if err := w.postJSON(ctx, "/v1/claim", claimRequest{Worker: w.Name}, &claim); err != nil {
			return err
		}
		switch {
		case claim.Failed != "":
			return fmt.Errorf("dispatch: run failed: %s", claim.Failed)
		case claim.Done:
			return nil
		case claim.Unit != "":
			if err := w.execute(ctx, claim); err != nil {
				return err
			}
		default:
			wait := time.Duration(claim.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = DefaultWaitHint
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait): //perfiso:allow walltime coordinator-directed claim poll wait
			}
		}
	}
}

// execute runs one claimed unit with a heartbeat goroutine alive for
// the duration, then uploads the result. A 409 (another worker beat us
// to the unit) is recorded and swallowed — the claim loop continues.
func (w *Worker) execute(ctx context.Context, claim claimResponse) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(claim.LeaseMS) * time.Millisecond / 3
		if interval <= 0 {
			interval = DefaultLeaseTTL / 3
		}
		ticker := time.NewTicker(interval) //perfiso:allow walltime lease heartbeats pace real time
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				// A lost lease (ok=false) is informational: the result
				// is deterministic, so we finish and upload anyway;
				// the coordinator keeps the first result to land.
				var hb heartbeatResponse
				_ = w.postJSON(hbCtx, "/v1/heartbeat", heartbeatRequest{Worker: w.Name, Unit: claim.Unit}, &hb)
			}
		}
	}()

	start := time.Now() //perfiso:allow walltime unit wall cost feeds timing.json only
	cell, runErr := w.Runner.RunUnit(claim.Unit)
	stopHB()
	<-hbDone
	if runErr != nil {
		return runErr
	}

	trk := w.Tracker
	if trk == nil {
		trk = obs.Default()
	}
	upStart := time.Now() //perfiso:allow walltime upload latency feeds the obs tracker only
	err := w.postJSON(ctx, "/v1/upload", uploadRequest{
		Worker:       w.Name,
		ManifestHash: w.Runner.Manifest.Hash,
		Cell:         cell,
	}, nil)
	var he *httpError
	if errors.As(err, &he) && he.Status == http.StatusConflict {
		w.Stale++
		return nil
	}
	if err != nil {
		return err
	}
	if trk.Enabled() {
		trk.Upload(time.Since(upStart).Seconds()) //perfiso:allow walltime upload latency feeds the obs tracker only
	}
	w.Units++
	if w.OnUnit != nil {
		w.OnUnit(cell.Experiment, cell.Cell, time.Since(start)) //perfiso:allow walltime unit wall cost feeds timing.json only
	}
	return nil
}
