package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"perfiso/internal/experiments"
	"perfiso/internal/shard"
)

// RunLocal dispatches the filtered run to n in-process workers through
// a loopback coordinator — the laptop and test mode of the subsystem.
// The workers speak the real HTTP protocol, so claim racing, leases
// and uploads are all exercised; only the network is local. n <= 0
// sizes the fleet like the cell pool (GOMAXPROCS, capped at the unit
// count). The returned partial merges like any other.
func RunLocal(reg *experiments.Registry, spec experiments.ScaleSpec, pattern string, n int,
	opts Options, onUnit func(experiment, cell string, elapsed time.Duration)) (shard.Partial, experiments.DispatchTiming, error) {
	var zt experiments.DispatchTiming
	runner, err := shard.NewUnitRunner(reg, spec, pattern)
	if err != nil {
		return shard.Partial{}, zt, err
	}
	c, err := NewCoordinator(runner.Manifest, opts)
	if err != nil {
		return shard.Partial{}, zt, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return shard.Partial{}, zt, err
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	n = experiments.PoolSize(n, len(runner.Units()))
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// OnUnit fires from each worker's goroutine; the shared callback
	// gets one lock so callers see serialized calls, like RunUnits.
	if onUnit != nil {
		inner := onUnit
		var cbMu sync.Mutex
		onUnit = func(experiment, cell string, elapsed time.Duration) {
			cbMu.Lock()
			defer cbMu.Unlock()
			inner(experiment, cell, elapsed)
		}
	}
	var mu sync.Mutex
	errs := make([]error, 0, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Coordinator: base,
			Name:        fmt.Sprintf("local-%d", i),
			Runner:      runner,
			OnUnit:      onUnit,
			Tracker:     opts.Tracker,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()

	// The coordinator finishing (success or poisoned-unit failure) is
	// the normal exit; every worker dying with units outstanding is the
	// abnormal one — without this branch the wait would hang forever.
	select {
	case <-c.Done():
	case <-workersDone:
	}
	cancel()
	wg.Wait()
	if err := c.Err(); err != nil {
		return shard.Partial{}, c.Timing(), err
	}
	p, err := c.Partial()
	if err != nil {
		return shard.Partial{}, c.Timing(), errors.Join(append([]error{err}, errs...)...)
	}
	if opts.Tracer != nil {
		p.Spans = opts.Tracer.Spans()
	}
	return p, c.Timing(), nil
}
