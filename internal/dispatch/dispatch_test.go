package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"perfiso/internal/experiments"
	"perfiso/internal/shard"
)

// fakeManifest is a synthetic three-unit manifest for pure scheduling
// tests — nothing in it can execute.
func fakeManifest() shard.Manifest {
	return shard.Manifest{
		Version: shard.ManifestVersion,
		Scale:   "test",
		Cells: []shard.ManifestCell{
			{Experiment: "e", Cell: "small", Cost: 1},
			{Experiment: "e", Cell: "big", Cost: 100},
			{Experiment: "e", Cell: "mid", Cost: 10},
		},
		Hash: "sha256:fake",
	}
}

// fakeClock is a manually advanced Options.now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestClaimOrderAndLifecycle: claims hand out expensive units first,
// idle claims wait, and completion flips to done.
func TestClaimOrderAndLifecycle(t *testing.T) {
	m := fakeManifest()
	c, err := NewCoordinator(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 3; i++ {
		r := c.claim("w")
		if r.Unit == "" {
			t.Fatalf("claim %d: %+v", i, r)
		}
		got = append(got, r.Cell)
	}
	if want := []string{"big", "mid", "small"}; !equalStrings(got, want) {
		t.Errorf("claim order %v, want %v", got, want)
	}

	// Everything leased: an extra claim waits, not done.
	if r := c.claim("w2"); r.WaitMS == 0 || r.Done {
		t.Errorf("claim with all units leased: %+v", r)
	}

	for _, cell := range []string{"small", "big", "mid"} {
		err := c.upload("w", m.Hash, shard.PartialCell{Unit: "cell:e/" + cell, Experiment: "e", Cell: cell, Result: []byte("{}")})
		if err != nil {
			t.Fatalf("upload %s: %v", cell, err)
		}
	}
	if r := c.claim("w"); !r.Done {
		t.Errorf("claim after completion: %+v", r)
	}
	select {
	case <-c.Done():
	default:
		t.Error("Done not closed after final upload")
	}
	p, err := c.Partial()
	if err != nil {
		t.Fatal(err)
	}
	// Partial cells come back in manifest unit order, not claim order.
	if len(p.Cells) != 3 || p.Cells[0].Cell != "small" || p.Cells[1].Cell != "big" {
		t.Errorf("partial order: %+v", p.Cells)
	}
	// w2 never held a lease, so only w counts as a worker.
	if p.ManifestHash != m.Hash || p.Shards != 1 || p.Workers != 1 {
		t.Errorf("partial header: %+v", p)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLeaseExpiryRequeueAndSteal: an abandoned lease requeues after
// its TTL and a different worker's re-claim counts as a steal; the
// abandoner's late upload is accepted only if it lands first.
func TestLeaseExpiryRequeueAndSteal(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m := fakeManifest()
	c, err := NewCoordinator(m, Options{LeaseTTL: time.Second, MaxAttempts: 3, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	first := c.claim("crasher") // takes "big" and is never heard from again
	if first.Cell != "big" {
		t.Fatalf("first claim: %+v", first)
	}

	// Within the TTL the unit stays leased.
	clock.advance(500 * time.Millisecond)
	if r := c.claim("healthy"); r.Cell != "mid" {
		t.Fatalf("second claim: %+v", r)
	}

	// Heartbeats extend the healthy lease across the crasher's expiry.
	clock.advance(700 * time.Millisecond)
	if hb := c.heartbeat("healthy", "cell:e/mid"); !hb.OK {
		t.Fatalf("heartbeat lost: %+v", hb)
	}
	if hb := c.heartbeat("crasher", "cell:e/big"); hb.OK {
		t.Error("expired lease heartbeat extended")
	}

	// The crasher's unit is requeued and stolen; "small" is still
	// pending, but "big" is more expensive so it goes first.
	r := c.claim("healthy")
	if r.Cell != "big" || r.Attempt != 2 {
		t.Fatalf("steal claim: %+v", r)
	}
	timing := c.Timing()
	if timing.Requeues != 1 || timing.Steals != 1 {
		t.Errorf("timing after steal: %+v", timing)
	}
	for _, w := range timing.Workers {
		if w.Worker == "crasher" && w.Requeues != 1 {
			t.Errorf("crasher accounting: %+v", w)
		}
		if w.Worker == "healthy" && w.Steals != 1 {
			t.Errorf("healthy accounting: %+v", w)
		}
	}

	// The healthy worker completes the stolen unit; the crasher's
	// eventual upload of the same unit is stale.
	if err := c.upload("healthy", m.Hash, shard.PartialCell{Unit: "cell:e/big", Experiment: "e", Cell: "big", Result: []byte("{}")}); err != nil {
		t.Fatal(err)
	}
	err = c.upload("crasher", m.Hash, shard.PartialCell{Unit: "cell:e/big", Experiment: "e", Cell: "big", Result: []byte("{}")})
	var ue *uploadError
	if !errors.As(err, &ue) || ue.status != http.StatusConflict {
		t.Fatalf("stale upload: %v", err)
	}
	if got := c.Timing().StaleUploads; got != 1 {
		t.Errorf("stale uploads %d, want 1", got)
	}

	// A hash from another manifest is malformed, not stale.
	err = c.upload("healthy", "sha256:other", shard.PartialCell{Unit: "cell:e/small", Experiment: "e", Cell: "small", Result: []byte("{}")})
	if !errors.As(err, &ue) || ue.status != http.StatusBadRequest {
		t.Fatalf("foreign-manifest upload: %v", err)
	}
}

// TestPoisonedUnitFailsRun: a unit that exhausts MaxAttempts fails the
// run, naming the unit, and subsequent claims and worker loops see the
// failure.
func TestPoisonedUnitFailsRun(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m := fakeManifest()
	c, err := NewCoordinator(m, Options{LeaseTTL: time.Second, MaxAttempts: 2, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if r := c.claim("bad"); r.Cell != "big" {
			t.Fatalf("attempt %d claim: %+v", i+1, r)
		}
		clock.advance(2 * time.Second) // let the lease rot
	}
	r := c.claim("bad")
	if r.Failed == "" || !strings.Contains(r.Failed, "cell:e/big") {
		t.Fatalf("claim after poisoning: %+v", r)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "exhausted 2 attempts") {
		t.Fatalf("Err: %v", err)
	}
	select {
	case <-c.Done():
	default:
		t.Error("Done not closed on failure")
	}
	if _, err := c.Partial(); err == nil {
		t.Error("Partial succeeded on a failed run")
	}
	// Other units are irrelevant once the run is failed; uploads are
	// refused too.
	if err := c.upload("bad", m.Hash, shard.PartialCell{Unit: "cell:e/mid", Experiment: "e", Cell: "mid", Result: []byte("{}")}); err == nil {
		t.Error("upload accepted on a failed run")
	}
}

// TestReapWithoutTraffic: a fleet that dies wholesale sends no claims
// or heartbeats, so only an owner-driven Reap can requeue its leases —
// and poisoning (hence run failure) must still be reachable that way.
func TestReapWithoutTraffic(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	m := fakeManifest()
	c, err := NewCoordinator(m, Options{LeaseTTL: time.Second, MaxAttempts: 1, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if r := c.claim("doomed"); r.Cell != "big" {
		t.Fatalf("claim: %+v", r)
	}
	clock.advance(2 * time.Second)
	c.Reap() // no claim/heartbeat will ever arrive again
	if got := c.Timing().Requeues; got != 1 {
		t.Errorf("requeues after Reap: %d, want 1", got)
	}
	// MaxAttempts=1, so that single expiry poisons the unit and fails
	// the run without any further worker traffic.
	select {
	case <-c.Done():
	default:
		t.Error("Done not closed by owner-driven Reap")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "cell:e/big") {
		t.Errorf("Err after Reap: %v", err)
	}
}

// TestHTTPProtocol drives the coordinator through its real handler:
// manifest fetch, claim, heartbeat, upload (including the 409), and
// status.
func TestHTTPProtocol(t *testing.T) {
	m := fakeManifest()
	c, err := NewCoordinator(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx := context.Background()

	got, err := FetchManifest(ctx, srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != m.Hash || len(got.Cells) != len(m.Cells) {
		t.Fatalf("fetched manifest: %+v", got)
	}

	w := &Worker{Coordinator: srv.URL, Name: "httpw", Client: srv.Client()}
	var claim claimResponse
	if err := w.postJSON(ctx, "/v1/claim", claimRequest{Worker: "httpw"}, &claim); err != nil {
		t.Fatal(err)
	}
	if claim.Unit != "cell:e/big" || claim.LeaseMS <= 0 {
		t.Fatalf("claim over HTTP: %+v", claim)
	}
	var hb heartbeatResponse
	if err := w.postJSON(ctx, "/v1/heartbeat", heartbeatRequest{Worker: "httpw", Unit: claim.Unit}, &hb); err != nil || !hb.OK {
		t.Fatalf("heartbeat over HTTP: %+v, %v", hb, err)
	}
	if err := w.postJSON(ctx, "/v1/upload", uploadRequest{Worker: "httpw", ManifestHash: m.Hash,
		Cell: shard.PartialCell{Unit: claim.Unit, Experiment: "e", Cell: "big", Result: []byte("{}")}}, nil); err != nil {
		t.Fatal(err)
	}
	err = w.postJSON(ctx, "/v1/upload", uploadRequest{Worker: "late", ManifestHash: m.Hash,
		Cell: shard.PartialCell{Unit: claim.Unit, Experiment: "e", Cell: "big", Result: []byte("{}")}}, nil)
	var he *httpError
	if !errors.As(err, &he) || he.Status != http.StatusConflict {
		t.Fatalf("stale upload over HTTP: %v", err)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status statusResponse
	if err := decodeResponse(resp, &status); err != nil {
		t.Fatal(err)
	}
	if status.Units != 3 || status.Done != 1 || status.Dispatch.StaleUploads != 1 {
		t.Errorf("status: %+v", status)
	}
}

// dispatchFilter keeps the real-execution tests fast while crossing
// the interesting boundaries: headline and fig5 share a standalone
// baseline by key, fig10 brings a second result type.
const dispatchFilter = "^(fig10|headline)$"

// artifactBytes renders a run's deterministic outputs.
func artifactBytes(t *testing.T, res experiments.RunResult) (summary, csv, md []byte) {
	t.Helper()
	dir := t.TempDir()
	if err := experiments.WriteArtifacts(dir, res); err != nil {
		t.Fatal(err)
	}
	summary, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	csv, err = os.ReadFile(filepath.Join(dir, "cells.csv"))
	if err != nil {
		t.Fatal(err)
	}
	return summary, csv, []byte(experiments.RenderMarkdown(res))
}

// singleRun is the single-process reference the dispatched runs must
// match byte-for-byte.
func singleRun(t *testing.T, reg *experiments.Registry, spec experiments.ScaleSpec) experiments.RunResult {
	t.Helper()
	m, err := shard.Build(reg, spec, dispatchFilter)
	if err != nil {
		t.Fatal(err)
	}
	single, err := reg.Run(experiments.RunOptions{Spec: spec, Workers: 2, Filter: regexp.MustCompile(dispatchFilter)})
	if err != nil {
		t.Fatal(err)
	}
	single.ManifestHash = m.Hash
	return single
}

// TestDispatchByteIdentical is the subsystem's acceptance property: a
// dispatched run at any worker count merges to artifacts
// byte-identical to a single-process run.
func TestDispatchByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	spec := experiments.TestSpec()
	reg := experiments.DefaultRegistry()
	wantSummary, wantCSV, wantMD := artifactBytes(t, singleRun(t, reg, spec))

	for _, workers := range []int{1, 3} {
		p, timing, err := RunLocal(reg, spec, dispatchFilter, workers, Options{}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if timing.Units != len(p.Cells) || timing.Units == 0 {
			t.Errorf("workers=%d: timing units %d, partial cells %d", workers, timing.Units, len(p.Cells))
		}
		var completed int
		for _, w := range timing.Workers {
			completed += w.Units
		}
		if completed != timing.Units {
			t.Errorf("workers=%d: per-worker completions %d != units %d", workers, completed, timing.Units)
		}
		merged, mt, err := shard.Merge(reg, spec, dispatchFilter, []shard.Partial{p})
		if err != nil {
			t.Fatalf("workers=%d: merge: %v", workers, err)
		}
		if len(mt.Shards) != 1 {
			t.Errorf("workers=%d: merge timing: %+v", workers, mt)
		}
		gotSummary, gotCSV, gotMD := artifactBytes(t, merged)
		if !bytes.Equal(gotSummary, wantSummary) || !bytes.Equal(gotCSV, wantCSV) || !bytes.Equal(gotMD, wantMD) {
			t.Errorf("workers=%d: dispatched artifacts differ from single-process run", workers)
		}
	}
}

// TestDispatchWorkerCrashByteIdentical injects a worker failure: one
// worker claims a unit and dies without heartbeating; the lease
// expires, the unit requeues, surviving workers finish, and the merged
// artifacts are still byte-identical to the single-process run.
func TestDispatchWorkerCrashByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	spec := experiments.TestSpec()
	reg := experiments.DefaultRegistry()
	wantSummary, wantCSV, wantMD := artifactBytes(t, singleRun(t, reg, spec))

	runner, err := shard.NewUnitRunner(reg, spec, dispatchFilter)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(runner.Manifest, Options{
		LeaseTTL: 300 * time.Millisecond,
		WaitHint: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The "crashed" worker: claims the most expensive unit over the
	// real protocol and is never heard from again.
	victim := &Worker{Coordinator: srv.URL, Name: "victim", Client: srv.Client()}
	var doomed claimResponse
	if err := victim.postJSON(context.Background(), "/v1/claim", claimRequest{Worker: "victim"}, &doomed); err != nil {
		t.Fatal(err)
	}
	if doomed.Unit == "" {
		t.Fatalf("victim claim: %+v", doomed)
	}

	// Two survivors drain the queue, stealing the victim's unit once
	// its lease expires.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &Worker{Coordinator: srv.URL, Name: fmt.Sprintf("survivor-%d", i), Runner: runner, Client: srv.Client()}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(context.Background()); err != nil {
				t.Errorf("%s: %v", w.Name, err)
			}
		}()
	}
	wg.Wait()
	select {
	case <-c.Done():
	default:
		t.Fatal("survivors exited with the run incomplete")
	}

	timing := c.Timing()
	if timing.Requeues < 1 || timing.Steals < 1 {
		t.Errorf("expected the victim's unit to requeue and be stolen: %+v", timing)
	}
	p, err := c.Partial()
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := shard.Merge(reg, spec, dispatchFilter, []shard.Partial{p})
	if err != nil {
		t.Fatal(err)
	}
	gotSummary, gotCSV, gotMD := artifactBytes(t, merged)
	if !bytes.Equal(gotSummary, wantSummary) || !bytes.Equal(gotCSV, wantCSV) || !bytes.Equal(gotMD, wantMD) {
		t.Error("artifacts differ after an injected worker crash")
	}
}

// TestTimingWorkersSortedByName: Timing() must list workers in sorted
// name order regardless of registration (map) order — the perfiso-lint
// maporder cleanup replaced an append-then-sort over the workers map
// with sorted-key iteration, and timing.json's dispatch section must
// stay deterministic for a given schedule.
func TestTimingWorkersSortedByName(t *testing.T) {
	c, err := NewCoordinator(fakeManifest(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zed", "alpha", "mike"} {
		c.claim(name)
	}
	workers := c.Timing().Workers
	if len(workers) != 3 {
		t.Fatalf("got %d workers, want 3", len(workers))
	}
	for i := 1; i < len(workers); i++ {
		if workers[i-1].Worker >= workers[i].Worker {
			t.Fatalf("workers not sorted by name: %q before %q", workers[i-1].Worker, workers[i].Worker)
		}
	}
}
