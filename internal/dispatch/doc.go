// Package dispatch executes a cell manifest dynamically: a coordinator
// serves claimable work units over a small HTTP+JSON protocol and
// workers pull, execute and upload them — work stealing instead of the
// static LPT plan of internal/shard. A straggler or crashed worker
// costs only its in-flight units: leases expire, the units requeue,
// and another worker picks them up.
//
// Determinism is inherited, not re-proven: a unit is one seeded
// simulation (shard.UnitRunner), its serialized result depends only on
// the unit, and the coordinator assembles results in manifest unit
// order into a shard.Partial that the coverage-checked shard.Merge
// reassembles. A dispatched run therefore produces artifacts
// byte-identical to a static-shard run and to a single-process run,
// regardless of claim order, worker count, crashes or retries.
//
// # Protocol
//
// All bodies are JSON; all responses are 200 unless noted. Workers
// poll — the coordinator never calls out.
//
//	GET  /v1/manifest
//	    → shard.Manifest. A worker rebuilds the same manifest from its
//	      own registry and refuses to work if the hashes differ
//	      (version skew between coordinator and worker binaries).
//
//	POST /v1/claim      {"worker": "name"}
//	    → {"unit": id, "experiment": e, "cell": c,
//	       "lease_ms": n, "attempt": k}   a granted lease
//	    → {"wait_ms": n}                  nothing claimable now (units
//	                                      in flight elsewhere) — retry
//	    → {"done": true}                  every unit completed — exit
//	    → {"failed": msg}                 run failed — exit non-zero
//	    The queue hands out expensive units first (manifest cost
//	    order). Before answering, the coordinator reaps expired leases:
//	    each reaped unit returns to the queue (a requeue) and a later
//	    claim by a different worker counts as a steal.
//
//	POST /v1/heartbeat  {"worker": w, "unit": id}
//	    → {"ok": true}   lease extended by one TTL
//	    → {"ok": false}  lease lost (expired and requeued, or the unit
//	                     finished elsewhere). The worker may finish and
//	                     upload anyway — first result wins — but must
//	                     not count on acceptance.
//
//	POST /v1/upload     {"worker": w, "manifest_hash": h,
//	                     "cell": shard.PartialCell}
//	    → {"ok": true}        accepted (first upload for the unit wins,
//	                          even if the uploader's lease had expired —
//	                          results are deterministic, so any
//	                          completed execution is the result)
//	    → 409 {"error": msg}  stale: another worker already completed
//	                          the unit
//	    → 400 {"error": msg}  malformed, unknown unit, or a manifest
//	                          hash the coordinator is not serving
//
//	GET  /v1/status
//	    → progress counters and the experiments.DispatchTiming snapshot
//	      (pending/leased/done counts, per-worker units, steals,
//	      requeues).
//
// # Fault tolerance
//
// Every granted lease has a TTL; workers heartbeat at TTL/3 while
// executing. A worker that crashes, hangs or just runs slow misses its
// deadline and the unit requeues — bounded by Options.MaxAttempts
// grants per unit. A unit that exhausts its attempts is poisoned and
// fails the whole run, listing every poisoned unit, so a simulation
// that reliably kills workers is reported instead of spinning forever.
// Stale uploads (the first worker finishing after its unit was
// reassigned and completed elsewhere) are rejected and counted.
//
// cmd/perfiso-repro exposes the subsystem as the serve and work
// subcommands plus the run -dispatch N in-process convenience mode;
// the dispatch section of timing.json records how the schedule played
// out, per unit and per worker.
//
// # Observability
//
// The coordinator renders its schedule state as Prometheus metrics
// (Coordinator.Metrics, served on /metrics by the serve subcommand);
// the values are read from the same book-keeping as Timing, so a
// scrape always matches timing.json's dispatch section. Scheduling
// events are logged through Options.Log as structured log/slog
// records with worker/unit/lease fields, decisions are counted
// through Options.Tracker (see internal/obs), and Options.Tracer
// collects one trace span per completed unit for the run-wide
// trace.jsonl.
package dispatch
