package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"perfiso/internal/experiments"
	"perfiso/internal/obs"
	"perfiso/internal/shard"
)

// Defaults for Options zero values.
const (
	DefaultLeaseTTL    = 15 * time.Second
	DefaultMaxAttempts = 3
	DefaultWaitHint    = 500 * time.Millisecond
)

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a claimed unit may go without a heartbeat
	// before it requeues. Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per unit; a unit requeued after
	// its MaxAttempts-th grant is poisoned and fails the run. Zero
	// means DefaultMaxAttempts.
	MaxAttempts int
	// WaitHint is the retry delay told to workers when nothing is
	// claimable. Zero means DefaultWaitHint.
	WaitHint time.Duration
	// Log, when set, receives one structured record per scheduling
	// event (claim, upload, requeue, stale upload, failure), carrying
	// worker/unit/lease fields so fleet logs are greppable by unit.
	Log *slog.Logger
	// Tracker observes coordinator decisions (claims, steals, lease
	// expiries, stale uploads). Nil means the process-wide default.
	Tracker obs.Tracker
	// Tracer, when set, collects one span per completed unit so a
	// dispatched run can be reassembled into a run-wide trace.
	Tracer *obs.TraceBuffer

	// now substitutes the clock in tests.
	now func() time.Time
}

type unitStatus int

const (
	unitPending unitStatus = iota
	unitLeased
	unitDone
)

// unitState is the coordinator's book-keeping for one unit.
type unitState struct {
	unit      shard.Unit
	status    unitStatus
	attempts  int       // lease grants so far
	worker    string    // current lease holder when leased
	expires   time.Time // lease deadline when leased
	last      string    // previous holder, for steal accounting
	claimedAt time.Time // when the winning lease was granted
	uploader  string    // worker whose result was accepted
	cell      shard.PartialCell
}

// Coordinator owns a manifest's unit queue and lease table and speaks
// the package protocol over Handler. It never executes anything
// itself.
type Coordinator struct {
	opts     Options
	manifest shard.Manifest

	mu        sync.Mutex
	states    []*unitState
	byID      map[string]int
	costOrder []int // state indices, expensive first
	doneCount int
	workers   map[string]*experiments.DispatchWorker
	requeues  int
	steals    int
	stale     int
	poisoned  []string
	failure   error
	started   time.Time
	done      chan struct{}
}

// NewCoordinator builds a coordinator serving the manifest's units.
func NewCoordinator(m shard.Manifest, opts Options) (*Coordinator, error) {
	units, err := m.Units()
	if err != nil {
		return nil, err
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.WaitHint <= 0 {
		opts.WaitHint = DefaultWaitHint
	}
	if opts.now == nil {
		opts.now = time.Now //perfiso:allow walltime lease clock; tests inject a fake
	}
	if opts.Tracker == nil {
		opts.Tracker = obs.Default()
	}
	c := &Coordinator{
		opts:     opts,
		manifest: m,
		states:   make([]*unitState, len(units)),
		byID:     make(map[string]int, len(units)),
		workers:  map[string]*experiments.DispatchWorker{},
		started:  opts.now(),
		done:     make(chan struct{}),
	}
	for i, u := range units {
		c.states[i] = &unitState{unit: u}
		c.byID[u.ID] = i
	}
	c.costOrder = make([]int, len(units))
	for i := range c.costOrder {
		c.costOrder[i] = i
	}
	sort.SliceStable(c.costOrder, func(a, b int) bool {
		return c.states[c.costOrder[a]].unit.Cost > c.states[c.costOrder[b]].unit.Cost
	})
	if len(units) == 0 {
		close(c.done) // an empty manifest is already complete
	}
	return c, nil
}

func (c *Coordinator) log(msg string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log.Info(msg, args...)
	}
}

// worker returns the accounting row for name, creating it on first
// contact. Caller holds mu.
func (c *Coordinator) worker(name string) *experiments.DispatchWorker {
	w, ok := c.workers[name]
	if !ok {
		w = &experiments.DispatchWorker{Worker: name}
		c.workers[name] = w
	}
	return w
}

// reap requeues every expired lease and poisons units out of attempts.
// Caller holds mu.
func (c *Coordinator) reap(now time.Time) {
	if c.failure != nil {
		return
	}
	for _, s := range c.states {
		if s.status != unitLeased || now.Before(s.expires) {
			continue
		}
		c.requeues++
		c.worker(s.worker).Requeues++
		s.last = s.worker
		s.worker = ""
		s.status = unitPending
		if c.opts.Tracker.Enabled() {
			c.opts.Tracker.LeaseExpired()
		}
		c.log("lease expired, unit requeued",
			"unit", s.unit.ID, "worker", s.last, "attempt", s.attempts, "lease", c.opts.LeaseTTL)
		if s.attempts >= c.opts.MaxAttempts {
			c.poisoned = append(c.poisoned, s.unit.ID)
		}
	}
	if len(c.poisoned) > 0 {
		c.failure = fmt.Errorf("dispatch: %d unit(s) exhausted %d attempts: %s",
			len(c.poisoned), c.opts.MaxAttempts, strings.Join(c.poisoned, ", "))
		c.log("run failed", "error", c.failure.Error())
		close(c.done)
	}
}

// Reap requeues expired leases and poisons exhausted units without
// waiting for worker traffic. The claim and heartbeat handlers reap on
// every request, which covers any run with a live worker; a server
// whose whole fleet crashed while holding leases sees no requests at
// all, so a coordinator owner should call Reap on a timer to keep the
// bounded-retry failure reachable.
func (c *Coordinator) Reap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(c.opts.now())
}

// claimResponse is the claim endpoint's answer; exactly one branch is
// populated.
type claimResponse struct {
	Unit       string `json:"unit,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	Cell       string `json:"cell,omitempty"`
	LeaseMS    int64  `json:"lease_ms,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
	WaitMS     int64  `json:"wait_ms,omitempty"`
	Done       bool   `json:"done,omitempty"`
	Failed     string `json:"failed,omitempty"`
}

// claim grants the most expensive pending unit to worker.
func (c *Coordinator) claim(worker string) claimResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	c.reap(now)
	if c.failure != nil {
		return claimResponse{Failed: c.failure.Error()}
	}
	for _, si := range c.costOrder {
		s := c.states[si]
		if s.status != unitPending {
			continue
		}
		s.status = unitLeased
		s.worker = worker
		s.attempts++
		s.expires = now.Add(c.opts.LeaseTTL)
		s.claimedAt = now
		w := c.worker(worker)
		w.Claims++
		if c.opts.Tracker.Enabled() {
			c.opts.Tracker.Claim()
		}
		if s.last != "" && s.last != worker {
			c.steals++
			w.Steals++
			if c.opts.Tracker.Enabled() {
				c.opts.Tracker.Steal()
			}
			c.log("unit stolen",
				"unit", s.unit.ID, "worker", worker, "from", s.last, "attempt", s.attempts, "lease", c.opts.LeaseTTL)
		} else {
			c.log("unit claimed",
				"unit", s.unit.ID, "worker", worker, "attempt", s.attempts, "lease", c.opts.LeaseTTL)
		}
		mc := c.manifest.Cells[s.unit.Cells[0]]
		return claimResponse{
			Unit:       s.unit.ID,
			Experiment: mc.Experiment,
			Cell:       mc.Cell,
			LeaseMS:    c.opts.LeaseTTL.Milliseconds(),
			Attempt:    s.attempts,
		}
	}
	if c.doneCount == len(c.states) {
		return claimResponse{Done: true}
	}
	return claimResponse{WaitMS: c.opts.WaitHint.Milliseconds()}
}

type heartbeatResponse struct {
	OK     bool   `json:"ok"`
	Failed string `json:"failed,omitempty"`
}

// heartbeat extends worker's lease on unit, if it still holds one.
func (c *Coordinator) heartbeat(worker, unit string) heartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	c.reap(now)
	if c.failure != nil {
		return heartbeatResponse{Failed: c.failure.Error()}
	}
	si, ok := c.byID[unit]
	if !ok {
		return heartbeatResponse{}
	}
	s := c.states[si]
	if s.status != unitLeased || s.worker != worker {
		return heartbeatResponse{}
	}
	s.expires = now.Add(c.opts.LeaseTTL)
	return heartbeatResponse{OK: true}
}

// uploadError distinguishes stale uploads (409) from malformed ones
// (400).
type uploadError struct {
	status int
	msg    string
}

func (e *uploadError) Error() string { return e.msg }

// upload records a completed unit. First result wins — results are
// deterministic, so whichever execution finished first is the result;
// a second upload for the same unit is stale and rejected.
func (c *Coordinator) upload(worker, manifestHash string, cell shard.PartialCell) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return &uploadError{http.StatusConflict, c.failure.Error()}
	}
	if manifestHash != c.manifest.Hash {
		return &uploadError{http.StatusBadRequest, fmt.Sprintf(
			"upload for manifest %s, coordinator serves %s", manifestHash, c.manifest.Hash)}
	}
	si, ok := c.byID[cell.Unit]
	if !ok {
		return &uploadError{http.StatusBadRequest, fmt.Sprintf("unknown unit %s", cell.Unit)}
	}
	s := c.states[si]
	if s.status == unitDone {
		c.stale++
		if c.opts.Tracker.Enabled() {
			c.opts.Tracker.StaleUpload()
		}
		c.log("stale upload rejected", "unit", cell.Unit, "worker", worker)
		return &uploadError{http.StatusConflict, fmt.Sprintf(
			"unit %s already completed by another worker", cell.Unit)}
	}
	s.status = unitDone
	s.worker = ""
	s.uploader = worker
	s.cell = cell
	c.doneCount++
	w := c.worker(worker)
	w.Units++
	w.Seconds += cell.Seconds
	if c.opts.Tracer != nil {
		c.opts.Tracer.Add(obs.Span{
			Experiment: cell.Experiment,
			Cell:       cell.Cell,
			Unit:       cell.Unit,
			Worker:     worker,
			StartMs:    float64(s.claimedAt.Sub(c.started)) / float64(time.Millisecond),
			DurationMs: cell.Seconds * 1e3,
		})
	}
	c.log("unit uploaded",
		"unit", cell.Unit, "worker", worker, "seconds", cell.Seconds,
		"done", c.doneCount, "total", len(c.states))
	if c.doneCount == len(c.states) {
		close(c.done)
	}
	return nil
}

// Done is closed when every unit has completed or the run has failed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err reports the run failure, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// Partial assembles the completed run as a single shard partial —
// cells in manifest unit order, so the bytes are independent of claim
// order and worker count. It errors until every unit is done.
func (c *Coordinator) Partial() (shard.Partial, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return shard.Partial{}, c.failure
	}
	if c.doneCount != len(c.states) {
		return shard.Partial{}, fmt.Errorf("dispatch: %d of %d units still outstanding", len(c.states)-c.doneCount, len(c.states))
	}
	p := shard.Partial{
		Version:        shard.PartialVersion,
		ManifestHash:   c.manifest.Hash,
		Scale:          c.manifest.Scale,
		Filter:         c.manifest.Filter,
		Shard:          0,
		Shards:         1,
		Workers:        len(c.workers),
		ElapsedSeconds: c.opts.now().Sub(c.started).Seconds(),
	}
	for _, s := range c.states {
		p.Cells = append(p.Cells, s.cell)
	}
	return p, nil
}

// Timing snapshots the schedule for timing.json's dispatch section.
// Workers are listed sorted by name.
func (c *Coordinator) Timing() experiments.DispatchTiming {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := experiments.DispatchTiming{
		LeaseSeconds: c.opts.LeaseTTL.Seconds(),
		Units:        len(c.states),
		Requeues:     c.requeues,
		Steals:       c.steals,
		StaleUploads: c.stale,
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Workers = append(t.Workers, *c.workers[name])
	}
	for _, s := range c.states {
		if s.status != unitDone {
			continue
		}
		t.UnitTimings = append(t.UnitTimings, experiments.DispatchUnit{
			Unit:       s.unit.ID,
			Experiment: s.cell.Experiment,
			Cell:       s.cell.Cell,
			Worker:     s.uploader,
			Attempts:   s.attempts,
			Seconds:    s.cell.Seconds,
		})
	}
	return t
}

// Metrics renders the coordinator's schedule state as Prometheus
// metrics for the /metrics endpoint. The values are drawn from the
// same book-keeping as Timing, so a scrape always matches
// timing.json's dispatch section.
func (c *Coordinator) Metrics() []obs.Metric {
	c.mu.Lock()
	defer c.mu.Unlock()
	pending, leased := 0, 0
	for _, s := range c.states {
		switch s.status {
		case unitPending:
			pending++
		case unitLeased:
			leased++
		}
	}
	claims := 0
	for _, w := range c.workers {
		claims += w.Claims
	}
	out := []obs.Metric{
		{Name: "perfiso_dispatch_units", Type: "gauge", Help: "Units in the manifest.", Value: float64(len(c.states))},
		{Name: "perfiso_dispatch_units_pending", Type: "gauge", Help: "Units waiting for a claim.", Value: float64(pending)},
		{Name: "perfiso_dispatch_units_leased", Type: "gauge", Help: "Units currently leased.", Value: float64(leased)},
		{Name: "perfiso_dispatch_units_done", Type: "gauge", Help: "Units completed.", Value: float64(c.doneCount)},
		{Name: "perfiso_dispatch_claims_total", Type: "counter", Help: "Leases granted.", Value: float64(claims)},
		{Name: "perfiso_dispatch_steals_total", Type: "counter", Help: "Re-claims by a different worker.", Value: float64(c.steals)},
		{Name: "perfiso_dispatch_lease_expiries_total", Type: "counter", Help: "Leases expired and requeued.", Value: float64(c.requeues)},
		{Name: "perfiso_dispatch_stale_uploads_total", Type: "counter", Help: "Uploads rejected as already completed.", Value: float64(c.stale)},
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, obs.Metric{
			Name: "perfiso_dispatch_worker_units", Type: "gauge",
			Help:   "Units completed per worker.",
			Labels: map[string]string{"worker": name},
			Value:  float64(c.workers[name].Units),
		})
	}
	return out
}

// statusResponse is the human-facing progress snapshot.
type statusResponse struct {
	ManifestHash string                     `json:"manifest_hash"`
	Scale        string                     `json:"scale"`
	Filter       string                     `json:"filter,omitempty"`
	Units        int                        `json:"units"`
	Pending      int                        `json:"pending"`
	Leased       int                        `json:"leased"`
	Done         int                        `json:"done"`
	Failed       string                     `json:"failed,omitempty"`
	Dispatch     experiments.DispatchTiming `json:"dispatch"`
}

func (c *Coordinator) status() statusResponse {
	t := c.Timing()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := statusResponse{
		ManifestHash: c.manifest.Hash,
		Scale:        c.manifest.Scale,
		Filter:       c.manifest.Filter,
		Units:        len(c.states),
		Done:         c.doneCount,
		Dispatch:     t,
	}
	for _, s := range c.states {
		switch s.status {
		case unitPending:
			out.Pending++
		case unitLeased:
			out.Leased++
		}
	}
	if c.failure != nil {
		out.Failed = c.failure.Error()
	}
	return out
}

// request bodies shared by claim, heartbeat and upload.
type claimRequest struct {
	Worker string `json:"worker"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	Unit   string `json:"unit"`
}

type uploadRequest struct {
	Worker       string            `json:"worker"`
	ManifestHash string            `json:"manifest_hash"`
	Cell         shard.PartialCell `json:"cell"`
}

type uploadResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decodeInto reads a small JSON body, failing the request on garbage.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, uploadResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// Handler serves the package protocol (see the package docs).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/manifest", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.manifest)
	})
	mux.HandleFunc("POST /v1/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if !decodeInto(w, r, &req) {
			return
		}
		if req.Worker == "" {
			writeJSON(w, http.StatusBadRequest, uploadResponse{Error: "claim without a worker name"})
			return
		}
		writeJSON(w, http.StatusOK, c.claim(req.Worker))
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeInto(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.heartbeat(req.Worker, req.Unit))
	})
	mux.HandleFunc("POST /v1/upload", func(w http.ResponseWriter, r *http.Request) {
		var req uploadRequest
		if !decodeInto(w, r, &req) {
			return
		}
		if err := c.upload(req.Worker, req.ManifestHash, req.Cell); err != nil {
			status := http.StatusBadRequest
			var ue *uploadError
			if errors.As(err, &ue) {
				status = ue.status
			}
			writeJSON(w, status, uploadResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, uploadResponse{OK: true})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.status())
	})
	return mux
}
