package memmodel

import (
	"testing"
	"testing/quick"
)

func TestBasicAccounting(t *testing.T) {
	tr := NewTracker(Standard128GB)
	tr.Set("indexserve", 110*GB)
	tr.Set("hdfs", 4*GB)
	if tr.Used() != 114*GB {
		t.Fatalf("used = %d", tr.Used())
	}
	if tr.Free() != 14*GB {
		t.Fatalf("free = %d", tr.Free())
	}
	if tr.Usage("indexserve") != 110*GB {
		t.Fatal("usage wrong")
	}
	procs := tr.Procs()
	if len(procs) != 2 || procs[0] != "hdfs" {
		t.Fatalf("procs = %v", procs)
	}
}

func TestGrowClampsAtZero(t *testing.T) {
	tr := NewTracker(GB)
	tr.Set("p", 100)
	tr.Grow("p", -500)
	if tr.Usage("p") != 0 {
		t.Fatalf("usage = %d, want 0", tr.Usage("p"))
	}
	tr.Grow("p", 300)
	if tr.Usage("p") != 300 {
		t.Fatalf("usage = %d, want 300", tr.Usage("p"))
	}
}

func TestLimitCallback(t *testing.T) {
	tr := NewTracker(Standard128GB)
	var gotProc string
	var gotUsage, gotLimit int64
	tr.OnLimitExceeded = func(p string, u, l int64) { gotProc, gotUsage, gotLimit = p, u, l }
	tr.SetLimit("batch", 8*GB)
	tr.Set("batch", 7*GB)
	if gotProc != "" {
		t.Fatal("limit fired below the cap")
	}
	tr.Set("batch", 9*GB)
	if gotProc != "batch" || gotUsage != 9*GB || gotLimit != 8*GB {
		t.Fatalf("callback got (%s,%d,%d)", gotProc, gotUsage, gotLimit)
	}
}

func TestLimitAppliedRetroactively(t *testing.T) {
	tr := NewTracker(Standard128GB)
	fired := false
	tr.OnLimitExceeded = func(string, int64, int64) { fired = true }
	tr.Set("batch", 9*GB)
	tr.SetLimit("batch", 8*GB) // already over
	if !fired {
		t.Fatal("retroactive limit violation not reported")
	}
}

func TestLimitRemoval(t *testing.T) {
	tr := NewTracker(Standard128GB)
	fired := 0
	tr.OnLimitExceeded = func(string, int64, int64) { fired++ }
	tr.SetLimit("batch", 8*GB)
	tr.SetLimit("batch", 0)
	tr.Set("batch", 100*GB)
	if fired != 0 {
		t.Fatal("removed limit still firing")
	}
	if tr.Limit("batch") != 0 {
		t.Fatal("limit not removed")
	}
}

func TestPressureCallback(t *testing.T) {
	tr := NewTracker(100)
	var pressureFree int64 = -1
	tr.OnPressure = func(free int64) { pressureFree = free }
	tr.SetPressureThreshold(10)
	tr.Set("a", 85)
	if pressureFree != -1 {
		t.Fatal("pressure fired with 15 free > 10 threshold")
	}
	tr.Set("b", 8)
	if pressureFree != 7 {
		t.Fatalf("pressure free = %d, want 7", pressureFree)
	}
}

func TestRelease(t *testing.T) {
	tr := NewTracker(100)
	tr.Set("p", 60)
	tr.Release("p")
	if tr.Used() != 0 || len(tr.Procs()) != 0 {
		t.Fatal("release did not clear the process")
	}
}

func TestNegativeSetPanics(t *testing.T) {
	tr := NewTracker(100)
	defer func() {
		if recover() == nil {
			t.Fatal("negative footprint did not panic")
		}
	}()
	tr.Set("p", -1)
}

func TestConservationProperty(t *testing.T) {
	// Property: Used is always the sum of individual usages and
	// Free + Used == Total.
	f := func(sizes []uint32) bool {
		tr := NewTracker(int64(1) << 40)
		var want int64
		for i, s := range sizes {
			name := string(rune('a' + i%26))
			prev := tr.Usage(name)
			tr.Set(name, int64(s))
			want += int64(s) - prev
		}
		return tr.Used() == want && tr.Free()+tr.Used() == tr.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
