// Package memmodel tracks per-process memory footprints on a machine.
// Primary services have an engineered fixed working set that must never
// be compromised (§3.2); PerfIso limits the secondary's footprint and
// kills secondary processes when memory runs very low.
package memmodel

import (
	"fmt"
	"sort"
)

// Tracker accounts memory for one machine.
type Tracker struct {
	totalBytes int64
	usage      map[string]int64
	limits     map[string]int64
	// OnLimitExceeded fires when a process's usage rises above its limit.
	OnLimitExceeded func(proc string, usage, limit int64)
	// OnPressure fires when machine free memory falls below the
	// threshold set by SetPressureThreshold.
	OnPressure        func(free int64)
	pressureThreshold int64
}

// NewTracker creates a tracker for a machine with the given RAM size.
func NewTracker(totalBytes int64) *Tracker {
	if totalBytes <= 0 {
		panic("memmodel: non-positive machine memory")
	}
	return &Tracker{
		totalBytes: totalBytes,
		usage:      map[string]int64{},
		limits:     map[string]int64{},
	}
}

// Total reports machine RAM.
func (t *Tracker) Total() int64 { return t.totalBytes }

// Used reports the sum of all footprints.
func (t *Tracker) Used() int64 {
	var sum int64
	for _, u := range t.usage {
		sum += u
	}
	return sum
}

// Free reports unallocated memory.
func (t *Tracker) Free() int64 { return t.totalBytes - t.Used() }

// Usage reports one process's footprint.
func (t *Tracker) Usage(proc string) int64 { return t.usage[proc] }

// Procs lists tracked processes, sorted.
func (t *Tracker) Procs() []string {
	out := make([]string, 0, len(t.usage))
	for p := range t.usage {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SetLimit caps a process's footprint; 0 removes the cap.
func (t *Tracker) SetLimit(proc string, bytes int64) {
	if bytes <= 0 {
		delete(t.limits, proc)
		return
	}
	t.limits[proc] = bytes
	t.check(proc)
}

// Limit reports a process's cap (0 = none).
func (t *Tracker) Limit(proc string) int64 { return t.limits[proc] }

// SetPressureThreshold arms OnPressure when free memory dips below
// bytes.
func (t *Tracker) SetPressureThreshold(bytes int64) { t.pressureThreshold = bytes }

// Set records a process's current footprint.
func (t *Tracker) Set(proc string, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("memmodel: negative footprint for %s", proc))
	}
	t.usage[proc] = bytes
	t.check(proc)
	if t.pressureThreshold > 0 && t.Free() < t.pressureThreshold && t.OnPressure != nil {
		t.OnPressure(t.Free())
	}
}

// Grow adjusts a process's footprint by delta (clamped at zero).
func (t *Tracker) Grow(proc string, delta int64) {
	u := t.usage[proc] + delta
	if u < 0 {
		u = 0
	}
	t.Set(proc, u)
}

// Release removes a process entirely (e.g. after a kill).
func (t *Tracker) Release(proc string) { delete(t.usage, proc) }

func (t *Tracker) check(proc string) {
	limit, ok := t.limits[proc]
	if !ok {
		return
	}
	if u := t.usage[proc]; u > limit && t.OnLimitExceeded != nil {
		t.OnLimitExceeded(proc, u, limit)
	}
}

// GB is a convenience constant for configuration.
const GB = int64(1) << 30

// Standard128GB is the evaluation machines' RAM (§5.2).
const Standard128GB = 128 * GB
