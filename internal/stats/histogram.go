// Package stats provides the measurement primitives shared by all PerfIso
// experiments: latency histograms with percentile queries, time-weighted
// utilization accounting, moving averages, and counters.
package stats

import (
	"fmt"
	"math"
	"sort"

	"perfiso/internal/sim"
)

// Histogram records positive values (typically latencies in nanoseconds)
// in logarithmic buckets with ~1% relative precision, like an HDR
// histogram. It supports millions of samples in O(1) memory.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
	// growth is the per-bucket multiplicative step; it fixes the bucket
	// layout, so only histograms with equal growth can merge.
	growth    float64
	logGrowth float64
}

// bucketGrowth is the default per-bucket multiplicative step: 1%
// relative error.
const bucketGrowth = 1.01

// NewHistogram returns an empty histogram with the default ~1%
// relative precision.
func NewHistogram() *Histogram {
	return NewHistogramGrowth(bucketGrowth)
}

// NewHistogramGrowth returns an empty histogram whose buckets step by
// the given multiplicative factor (relative precision growth-1).
// Coarser layouts trade precision for memory. Growth must exceed 1.
func NewHistogramGrowth(growth float64) *Histogram {
	if !(growth > 1) {
		panic(fmt.Sprintf("stats: histogram growth %v, must be > 1", growth))
	}
	return &Histogram{
		min:       math.Inf(1),
		max:       math.Inf(-1),
		growth:    growth,
		logGrowth: math.Log(growth),
	}
}

func (h *Histogram) bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	return 1 + int(math.Log(v)/h.logGrowth)
}

func (h *Histogram) bucketValue(b int) float64 {
	if b == 0 {
		return 0
	}
	// Midpoint of the bucket in log space.
	return math.Exp((float64(b) - 0.5) * h.logGrowth)
}

// Add records one observation. Negative values are clamped to zero;
// they can only arise from floating-point noise in callers.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	b := h.bucketOf(v)
	if b >= len(h.counts) {
		// Grow geometrically: the old +16 step re-copied the whole
		// array every 16 new buckets, an O(n²) ramp over the ~2300
		// buckets a nanosecond-scale latency range spans. Trailing
		// zero buckets never affect totals, quantiles or merges, so
		// the layout (and every committed artifact) is unchanged.
		n := 2 * len(h.counts)
		if n < b+16 {
			n = b + 16
		}
		grown := make([]uint64, n)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// AddDuration records a sim.Duration observation.
func (h *Histogram) AddDuration(d sim.Duration) { h.Add(float64(d)) }

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max report exact extremes (not bucketed).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile reports the value at quantile q in [0,1], with ~1% relative
// error from bucketing. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > rank {
			v := h.bucketValue(b)
			// Clamp to the exact observed extremes so tiny sample
			// sets report sane numbers.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P95 and P99 are the percentiles the paper reports.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// QuantileDuration reports Quantile(q) as a sim.Duration.
func (h *Histogram) QuantileDuration(q float64) sim.Duration {
	return sim.Duration(h.Quantile(q))
}

// Merge adds all of other's observations into h. It errors when the
// bucket layouts differ — adding counts bucket-by-bucket across
// layouts would silently misplace every sample.
func (h *Histogram) Merge(other *Histogram) error {
	if other.growth != h.growth {
		return fmt.Errorf("stats: cannot merge histograms with bucket growth %v into %v", other.growth, h.growth)
	}
	if other.total == 0 {
		return nil
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// LatencySummary is the standard per-experiment latency readout, in
// milliseconds, mirroring the y-axes of the paper's figures.
type LatencySummary struct {
	Count  uint64
	MeanMs float64
	P50Ms  float64
	P95Ms  float64
	P99Ms  float64
	MaxMs  float64
}

// Summary reads the histogram (of nanosecond observations) as milliseconds.
func (h *Histogram) Summary() LatencySummary {
	const ms = float64(sim.Millisecond)
	return LatencySummary{
		Count:  h.total,
		MeanMs: h.Mean() / ms,
		P50Ms:  h.P50() / ms,
		P95Ms:  h.P95() / ms,
		P99Ms:  h.P99() / ms,
		MaxMs:  h.Max() / ms,
	}
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		s.Count, s.MeanMs, s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
}

// ExactPercentile computes an exact percentile over a small sample slice
// (nearest-rank); used by tests to validate the histogram approximation.
func ExactPercentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// WindowedLatency buckets latency samples into fixed time windows so
// experiments can report percentile series over time (the Fig. 10
// plots). The zero value is not usable; construct with NewWindowedLatency.
type WindowedLatency struct {
	window  sim.Duration
	buckets []*Histogram
}

// NewWindowedLatency creates a series with the given window width.
func NewWindowedLatency(window sim.Duration) *WindowedLatency {
	if window <= 0 {
		panic("stats: non-positive window")
	}
	return &WindowedLatency{window: window}
}

// Add records a sample observed at time t.
func (w *WindowedLatency) Add(t sim.Time, d sim.Duration) {
	idx := int(t / sim.Time(w.window))
	for len(w.buckets) <= idx {
		w.buckets = append(w.buckets, NewHistogram())
	}
	w.buckets[idx].AddDuration(d)
}

// Windows reports how many windows hold data.
func (w *WindowedLatency) Windows() int { return len(w.buckets) }

// Window returns the histogram of the i-th window (nil when empty or
// out of range).
func (w *WindowedLatency) Window(i int) *Histogram {
	if i < 0 || i >= len(w.buckets) {
		return nil
	}
	return w.buckets[i]
}

// Series extracts one quantile across all windows, in milliseconds;
// empty windows yield NaN-free zeros.
func (w *WindowedLatency) Series(q float64) []float64 {
	out := make([]float64, len(w.buckets))
	for i, h := range w.buckets {
		if h.Count() > 0 {
			out[i] = h.Quantile(q) / float64(sim.Millisecond)
		}
	}
	return out
}
