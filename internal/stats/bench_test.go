package stats

import (
	"testing"

	"perfiso/internal/sim"
)

// BenchmarkHistogramAdd measures the per-query recording cost — it sits
// on the completion path of every simulated query.
func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.AddDuration(sim.Duration(i%20+1) * sim.Millisecond)
	}
}

// BenchmarkHistogramQuantile measures tail extraction over a populated
// histogram.
func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	r := sim.NewRNG(7)
	for i := 0; i < 100000; i++ {
		h.Add(r.LogNormal(4e6, 0.5))
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += h.P99()
	}
	_ = acc
}

// BenchmarkAccountingAccumulate measures the per-accrual cost charged on
// every scheduling event.
func BenchmarkAccountingAccumulate(b *testing.B) {
	a := NewCPUAccounting(48, 0)
	for i := 0; i < b.N; i++ {
		a.Accumulate(ClassPrimary, sim.Microsecond)
	}
}
