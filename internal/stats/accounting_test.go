package stats

import (
	"math"
	"testing"
	"testing/quick"

	"perfiso/internal/sim"
)

func TestCPUAccountingShares(t *testing.T) {
	a := NewCPUAccounting(48, 0)
	// One second elapses; 10 core-seconds to primary, 20 to secondary,
	// 1 to OS, 17 idle.
	a.Accumulate(ClassPrimary, 10*sim.Second)
	a.Accumulate(ClassSecondary, 20*sim.Second)
	a.Accumulate(ClassOS, 1*sim.Second)
	a.Accumulate(ClassIdle, 17*sim.Second)
	now := sim.Time(sim.Second)
	b := a.Breakdown(now)
	if math.Abs(b.PrimaryPct-10.0/48*100) > 0.01 {
		t.Fatalf("primary = %v", b.PrimaryPct)
	}
	if math.Abs(b.UsedPct()-(31.0/48*100)) > 0.01 {
		t.Fatalf("used = %v", b.UsedPct())
	}
	if a.Capacity(now) != 48*sim.Second {
		t.Fatalf("capacity = %v", a.Capacity(now))
	}
}

func TestCPUAccountingConservation(t *testing.T) {
	// Property: however time is split across classes, the total equals
	// the sum of parts and utilization stays in [0,1] when parts fit
	// within capacity.
	f := func(p, s, o uint16) bool {
		a := NewCPUAccounting(4, 0)
		total := sim.Duration(p) + sim.Duration(s) + sim.Duration(o)
		a.Accumulate(ClassPrimary, sim.Duration(p))
		a.Accumulate(ClassSecondary, sim.Duration(s))
		a.Accumulate(ClassOS, sim.Duration(o))
		if a.Total() != total {
			return false
		}
		now := sim.Time(total) // capacity = 4*total >= total
		for _, c := range []Class{ClassPrimary, ClassSecondary, ClassOS} {
			u := a.Utilization(c, now)
			if total > 0 && (u < 0 || u > 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUAccountingNegativePanics(t *testing.T) {
	a := NewCPUAccounting(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative accumulation did not panic")
		}
	}()
	a.Accumulate(ClassIdle, -1)
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassIdle: "idle", ClassPrimary: "primary",
		ClassSecondary: "secondary", ClassOS: "os",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class produced empty string")
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Value() != 0 {
		t.Fatal("empty moving average not 0")
	}
	m.Add(3)
	m.Add(6)
	if m.Value() != 4.5 {
		t.Fatalf("partial window avg = %v, want 4.5", m.Value())
	}
	m.Add(9)
	if m.Value() != 6 {
		t.Fatalf("full window avg = %v, want 6", m.Value())
	}
	m.Add(12) // evicts 3
	if m.Value() != 9 {
		t.Fatalf("rolled avg = %v, want 9", m.Value())
	}
	if m.Filled() != 3 {
		t.Fatalf("filled = %d, want 3", m.Filled())
	}
}

func TestMovingAverageProperty(t *testing.T) {
	// Property: the moving average always lies within [min, max] of the
	// last `size` samples.
	f := func(vals []float64, sz uint8) bool {
		size := int(sz%16) + 1
		m := NewMovingAverage(size)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep magnitudes in a realistic range: the running-sum
			// implementation is not meant for ±1e308 inputs.
			v = math.Mod(v, 1e9)
			vals[i] = v
			m.Add(v)
			lo, hi := math.Inf(1), math.Inf(-1)
			start := i - size + 1
			if start < 0 {
				start = 0
			}
			for _, w := range vals[start : i+1] {
				lo = math.Min(lo, w)
				hi = math.Max(hi, w)
			}
			if m.Value() < lo-1e-6*math.Abs(lo)-1e-9 || m.Value() > hi+1e-6*math.Abs(hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("dropped", 2)
	c.Inc("dropped", 3)
	c.Inc("completed", 1)
	if c.Get("dropped") != 5 || c.Get("completed") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter arithmetic wrong")
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "completed" || labels[1] != "dropped" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	if ts.Mean() != 0 || ts.Max() != 0 || ts.Min() != 0 {
		t.Fatal("empty series stats not 0")
	}
	ts.Add(0, 10)
	ts.Add(sim.Time(sim.Second), 30)
	ts.Add(sim.Time(2*sim.Second), 20)
	if ts.Len() != 3 || ts.Mean() != 20 || ts.Max() != 30 || ts.Min() != 10 {
		t.Fatalf("series stats wrong: mean=%v max=%v min=%v", ts.Mean(), ts.Max(), ts.Min())
	}
}
