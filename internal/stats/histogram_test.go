package stats

import (
	"math"
	"testing"
	"testing/quick"

	"perfiso/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Add(4e6) // 4ms in ns
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); math.Abs(got-4e6)/4e6 > 0.02 {
			t.Fatalf("Quantile(%v) = %v, want ~4e6", q, got)
		}
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	r := sim.NewRNG(1)
	samples := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := r.LogNormal(4e6, 0.5)
		h.Add(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := ExactPercentile(samples, q)
		got := h.Quantile(q)
		if math.Abs(got-exact)/exact > 0.03 {
			t.Fatalf("Quantile(%v) = %v, exact = %v (err > 3%%)", q, got, exact)
		}
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: quantiles are non-decreasing in q for any sample set.
	f := func(raw []uint32) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Add(float64(v))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Property: every quantile lies within [min, max].
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Add(float64(v))
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	r := sim.NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.LogNormal(1e6, 1.0)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != both.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), both.Count())
	}
	if math.Abs(a.P99()-both.P99())/both.P99() > 0.001 {
		t.Fatalf("merged P99 = %v, want %v", a.P99(), both.P99())
	}
	if a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatal("merged extremes differ")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Reset()
	if h.Count() != 0 || h.P99() != 0 {
		t.Fatal("reset histogram not empty")
	}
	h.Add(7)
	if h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram()
	h.Add(-3)
	if h.Min() != 0 {
		t.Fatalf("negative value not clamped: min=%v", h.Min())
	}
}

func TestSummaryMilliseconds(t *testing.T) {
	h := NewHistogram()
	h.AddDuration(4 * sim.Millisecond)
	h.AddDuration(12 * sim.Millisecond)
	s := h.Summary()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.MeanMs-8.0) > 0.01 {
		t.Fatalf("mean = %v ms, want 8", s.MeanMs)
	}
	if s.MaxMs < 11.9 || s.MaxMs > 12.1 {
		t.Fatalf("max = %v ms, want ~12", s.MaxMs)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestExactPercentile(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	if got := ExactPercentile(s, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := ExactPercentile(s, 0.99); got != 5 {
		t.Fatalf("p99 = %v, want 5", got)
	}
	if got := ExactPercentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	// Input must not be reordered.
	if s[0] != 5 || s[4] != 3 {
		t.Fatal("ExactPercentile mutated its input")
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty mean/min/max = %v/%v/%v, want zeros",
			h.Mean(), h.Min(), h.Max())
	}
	s := h.Summary()
	if s.Count != 0 || s.P99Ms != 0 || math.IsNaN(s.MeanMs) {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
}

func TestHistogramSingleSampleMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	b.Add(42)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1 {
		t.Fatalf("count = %d, want 1", a.Count())
	}
	if a.Min() != 42 || a.Max() != 42 {
		t.Fatalf("extremes = %v/%v, want 42/42", a.Min(), a.Max())
	}
	// Every quantile of one sample is that sample (clamped to the exact
	// extremes, so no bucketing error).
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := a.Quantile(q); got != 42 {
			t.Fatalf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	// Merging an empty histogram back is a no-op.
	if err := a.Merge(NewHistogram()); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1 {
		t.Fatalf("count after empty merge = %d, want 1", a.Count())
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	fine, coarse := NewHistogram(), NewHistogramGrowth(1.5)
	fine.Add(10)
	coarse.Add(10)
	if err := fine.Merge(coarse); err == nil {
		t.Fatal("merging mismatched bucket layouts did not error")
	}
	if err := coarse.Merge(fine); err == nil {
		t.Fatal("merging mismatched bucket layouts did not error (reverse)")
	}
	// The failed merge must not have corrupted either side.
	if fine.Count() != 1 || coarse.Count() != 1 {
		t.Fatalf("counts after rejected merge = %d/%d, want 1/1",
			fine.Count(), coarse.Count())
	}
	// An empty histogram with a mismatched layout still errors — the
	// layout check is about intent, not contents.
	if err := fine.Merge(NewHistogramGrowth(2)); err == nil {
		t.Fatal("merging empty mismatched histogram did not error")
	}
}

func TestHistogramGrowthValidation(t *testing.T) {
	for _, g := range []float64{0, 1, 0.5, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogramGrowth(%v) did not panic", g)
				}
			}()
			NewHistogramGrowth(g)
		}()
	}
	// A coarse layout still buckets and queries sanely.
	h := NewHistogramGrowth(2)
	for i := 1; i <= 1024; i++ {
		h.Add(float64(i))
	}
	p50 := h.P50()
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("coarse P50 = %v, out of sane range", p50)
	}
}
