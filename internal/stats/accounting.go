package stats

import (
	"fmt"
	"sort"

	"perfiso/internal/sim"
)

// Class labels CPU time by who consumed it, matching the utilization
// breakdown in Figs. 4b-7b of the paper.
type Class int

const (
	ClassIdle Class = iota
	ClassPrimary
	ClassSecondary
	ClassOS
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassIdle:
		return "idle"
	case ClassPrimary:
		return "primary"
	case ClassSecondary:
		return "secondary"
	case ClassOS:
		return "os"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// CPUAccounting accumulates per-class core time. One instance covers a
// whole machine; every core reports its intervals here.
type CPUAccounting struct {
	classTime [numClasses]sim.Duration
	start     sim.Time
	cores     int
}

// NewCPUAccounting starts accounting for a machine with the given core
// count at time start.
func NewCPUAccounting(cores int, start sim.Time) *CPUAccounting {
	return &CPUAccounting{start: start, cores: cores}
}

// Accumulate credits d of core time to class c.
func (a *CPUAccounting) Accumulate(c Class, d sim.Duration) {
	if d < 0 {
		panic("stats: negative accumulation")
	}
	a.classTime[c] += d
}

// Class reports the total core time credited to c.
func (a *CPUAccounting) Class(c Class) sim.Duration { return a.classTime[c] }

// Total reports the total credited core time across classes.
func (a *CPUAccounting) Total() sim.Duration {
	var t sim.Duration
	for _, d := range a.classTime {
		t += d
	}
	return t
}

// Capacity reports cores × elapsed time at now: the figure every class
// share is measured against.
func (a *CPUAccounting) Capacity(now sim.Time) sim.Duration {
	return sim.Duration(a.cores) * now.Sub(a.start)
}

// Utilization reports the fraction of machine capacity consumed by class c
// over [start, now], in [0, 1].
func (a *CPUAccounting) Utilization(c Class, now sim.Time) float64 {
	cap := a.Capacity(now)
	if cap <= 0 {
		return 0
	}
	return float64(a.classTime[c]) / float64(cap)
}

// Breakdown reports the per-class utilization shares at now, as
// percentages, in class order (idle, primary, secondary, os).
type Breakdown struct {
	IdlePct      float64
	PrimaryPct   float64
	SecondaryPct float64
	OSPct        float64
}

func (a *CPUAccounting) Breakdown(now sim.Time) Breakdown {
	return Breakdown{
		IdlePct:      100 * a.Utilization(ClassIdle, now),
		PrimaryPct:   100 * a.Utilization(ClassPrimary, now),
		SecondaryPct: 100 * a.Utilization(ClassSecondary, now),
		OSPct:        100 * a.Utilization(ClassOS, now),
	}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("primary=%.1f%% secondary=%.1f%% os=%.1f%% idle=%.1f%%",
		b.PrimaryPct, b.SecondaryPct, b.OSPct, b.IdlePct)
}

// UsedPct reports total non-idle utilization.
func (b Breakdown) UsedPct() float64 { return b.PrimaryPct + b.SecondaryPct + b.OSPct }

// MovingAverage is a fixed-window moving average over periodically
// sampled values, as used by the DWRR IOPS smoother (§4.1).
type MovingAverage struct {
	window []float64
	size   int
	next   int
	filled int
	sum    float64
}

// NewMovingAverage returns an average over the last size samples.
func NewMovingAverage(size int) *MovingAverage {
	if size <= 0 {
		panic("stats: non-positive moving-average window")
	}
	return &MovingAverage{window: make([]float64, size), size: size}
}

// Add inserts a sample, evicting the oldest when full.
func (m *MovingAverage) Add(v float64) {
	if m.filled == m.size {
		m.sum -= m.window[m.next]
	} else {
		m.filled++
	}
	m.window[m.next] = v
	m.sum += v
	m.next = (m.next + 1) % m.size
}

// Value reports the current average, or 0 with no samples.
func (m *MovingAverage) Value() float64 {
	if m.filled == 0 {
		return 0
	}
	return m.sum / float64(m.filled)
}

// Filled reports how many samples the window currently holds.
func (m *MovingAverage) Filled() int { return m.filled }

// Counter is a labeled monotonic counter set.
type Counter struct {
	counts map[string]uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: map[string]uint64{}} }

// Inc adds n to label.
func (c *Counter) Inc(label string, n uint64) { c.counts[label] += n }

// Get reads label's value.
func (c *Counter) Get(label string) uint64 { return c.counts[label] }

// Labels returns the sorted label set.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for l := range c.counts {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// TimeSeries collects (time, value) samples for plotting-style outputs
// such as Fig. 10 (QPS, P99 and utilization over one hour).
type TimeSeries struct {
	Times  []sim.Time
	Values []float64
}

// Add appends a sample.
func (ts *TimeSeries) Add(t sim.Time, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len reports the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Values) }

// Mean reports the unweighted mean of the values, or 0 when empty.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range ts.Values {
		sum += v
	}
	return sum / float64(len(ts.Values))
}

// Max reports the maximum value, or 0 when empty.
func (ts *TimeSeries) Max() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	max := ts.Values[0]
	for _, v := range ts.Values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Min reports the minimum value, or 0 when empty.
func (ts *TimeSeries) Min() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	min := ts.Values[0]
	for _, v := range ts.Values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}
