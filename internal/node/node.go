// Package node composes one simulated production server: the CPU
// machine model, SSD/HDD stripes, memory tracker, NIC, OS facade,
// background OS load, and an IndexServe primary — the fixture every
// single-machine experiment (Figs. 4–8) runs on.
package node

import (
	"perfiso/internal/cpumodel"
	"perfiso/internal/diskmodel"
	"perfiso/internal/indexserve"
	"perfiso/internal/memmodel"
	"perfiso/internal/netmodel"
	"perfiso/internal/osmodel"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// Config assembles a node.
type Config struct {
	CPU cpumodel.Config
	// Seed drives all node-local randomness.
	Seed uint64
	// IndexServe calibrates the primary; zero value disables the
	// primary entirely (bully-only fixtures).
	IndexServe *indexserve.Config
	// OSBackgroundFraction models kernel/housekeeping load (≈2%).
	OSBackgroundFraction float64
	// DisableDisks turns off the SSD/HDD models for CPU-only runs.
	DisableDisks bool
	// MemoryBytes sizes RAM; 0 uses the standard 128 GB.
	MemoryBytes int64
}

// DefaultConfig mirrors the evaluation hardware (§5.2) with the
// calibrated IndexServe profile.
func DefaultConfig() Config {
	isCfg := indexserve.DefaultConfig()
	return Config{
		CPU:                  cpumodel.DefaultConfig(),
		Seed:                 1,
		IndexServe:           &isCfg,
		OSBackgroundFraction: 0.02,
	}
}

// Node is one assembled server.
type Node struct {
	Eng    *sim.Engine
	CPU    *cpumodel.Machine
	OS     *osmodel.OS
	SSD    *diskmodel.Volume
	HDD    *diskmodel.Volume
	Memory *memmodel.Tracker
	NIC    *netmodel.NIC
	Server *indexserve.Server
	OSLoad *workload.BackgroundCPU
}

// New assembles and starts a node on eng.
func New(eng *sim.Engine, cfg Config) *Node {
	n := &Node{Eng: eng}
	rng := sim.NewRNG(cfg.Seed)
	n.CPU = cpumodel.New(eng, rng.Split(1), cfg.CPU)

	var vols []*diskmodel.Volume
	if !cfg.DisableDisks {
		n.SSD = diskmodel.NewVolume(eng, diskmodel.SSDStripeConfig())
		n.HDD = diskmodel.NewVolume(eng, diskmodel.HDDStripeConfig())
		vols = []*diskmodel.Volume{n.SSD, n.HDD}
	}
	mem := cfg.MemoryBytes
	if mem == 0 {
		mem = memmodel.Standard128GB
	}
	n.Memory = memmodel.NewTracker(mem)
	n.NIC = netmodel.NewNIC(eng, netmodel.TenGbE())
	n.OS = osmodel.New(eng, n.CPU, vols, n.Memory, n.NIC)

	if cfg.OSBackgroundFraction > 0 {
		n.OSLoad = workload.NewBackgroundCPU(n.CPU, "os-housekeeping", stats.ClassOS, cfg.OSBackgroundFraction)
		n.OSLoad.Start()
	}
	if cfg.IndexServe != nil {
		n.Server = indexserve.New(n.CPU, *cfg.IndexServe, n.SSD, n.HDD)
		n.Server.AttachNIC(n.NIC)
		// The primary's engineered fixed working set (§3.2).
		n.Memory.Set(n.Server.Proc.Name, 110*memmodel.GB)
	}
	return n
}

// ReplayTrace schedules the trace against the node's primary and
// resets measurement state when the warmup prefix has been submitted,
// mirroring the paper's unreported 100k-query warmup.
func (n *Node) ReplayTrace(trace []workload.QuerySpec, warmupQueries int) *workload.Client {
	client := workload.NewClient(n.Eng, func(q workload.QuerySpec) { n.Server.Submit(q) })
	if warmupQueries > 0 && warmupQueries < len(trace) {
		boundary := trace[warmupQueries].Arrival
		n.Eng.At(boundary, func() { n.ResetMeasurement() })
	}
	client.Replay(trace)
	return client
}

// ResetMeasurement clears latency and utilization history (warmup cut).
func (n *Node) ResetMeasurement() {
	n.CPU.ResetAccounting()
	if n.Server != nil {
		n.Server.Latency.Reset()
		n.Server.Completed = 0
		n.Server.Dropped = 0
	}
}
