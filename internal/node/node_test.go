package node

import (
	"testing"

	"perfiso/internal/sim"
	"perfiso/internal/workload"
)

// drain runs the engine until the trace has fully played out plus a
// settling period. RunAll would never return here: the node's OS
// housekeeping load re-arms its ticker forever.
func drain(eng *sim.Engine, trace []workload.QuerySpec) {
	last := trace[len(trace)-1].Arrival
	eng.Run(last.Add(2 * sim.Second))
}

// runStandalone replays a trace with no secondary and returns the node.
func runStandalone(t *testing.T, qps float64, queries int) *Node {
	t.Helper()
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	trace := workload.GenerateTrace(workload.TraceConfig{Queries: queries, Rate: qps, Seed: 42})
	n.ReplayTrace(trace, queries/5)
	drain(eng, trace)
	return n
}

func TestStandaloneProfile2000(t *testing.T) {
	n := runStandalone(t, 2000, 16000)
	sum := n.Server.Latency.Summary()
	t.Logf("standalone 2000 QPS: %v", sum)
	t.Logf("breakdown: %v", n.CPU.Breakdown())
	// Paper: P50 ≈ 4 ms, P99 ≈ 12 ms, CPU ~20% busy (80% idle).
	if sum.P50Ms < 3.0 || sum.P50Ms > 5.5 {
		t.Errorf("P50 = %.2f ms, want ~4", sum.P50Ms)
	}
	if sum.P99Ms < 9.0 || sum.P99Ms > 15.0 {
		t.Errorf("P99 = %.2f ms, want ~12", sum.P99Ms)
	}
	b := n.CPU.Breakdown()
	if b.IdlePct < 70 || b.IdlePct > 88 {
		t.Errorf("idle = %.1f%%, want ~80%%", b.IdlePct)
	}
	if n.Server.DropRate() > 0.001 {
		t.Errorf("standalone dropped %.2f%% queries", 100*n.Server.DropRate())
	}
}

func TestStandaloneProfile4000(t *testing.T) {
	n := runStandalone(t, 4000, 24000)
	sum := n.Server.Latency.Summary()
	t.Logf("standalone 4000 QPS: %v", sum)
	t.Logf("breakdown: %v", n.CPU.Breakdown())
	// Paper: same latency profile; CPU ~40% busy (60% idle).
	if sum.P50Ms < 3.0 || sum.P50Ms > 6.0 {
		t.Errorf("P50 = %.2f ms, want ~4", sum.P50Ms)
	}
	if sum.P99Ms < 9.0 || sum.P99Ms > 16.0 {
		t.Errorf("P99 = %.2f ms, want ~12", sum.P99Ms)
	}
	b := n.CPU.Breakdown()
	if b.IdlePct < 50 || b.IdlePct > 70 {
		t.Errorf("idle = %.1f%%, want ~60%%", b.IdlePct)
	}
	if n.Server.DropRate() > 0.001 {
		t.Errorf("standalone dropped %.2f%% queries", 100*n.Server.DropRate())
	}
}

func TestMeasurementResetExcludesWarmup(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	trace := workload.GenerateTrace(workload.TraceConfig{Queries: 2000, Rate: 2000, Seed: 1})
	n.ReplayTrace(trace, 1000)
	drain(eng, trace)
	total := n.Server.Completed + n.Server.Dropped
	if total >= 2000 || total < 900 {
		t.Fatalf("measured %d queries; warmup not excluded (want ~1000)", total)
	}
}

func TestNodeWithoutDisks(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.DisableDisks = true
	n := New(eng, cfg)
	if n.SSD != nil || n.HDD != nil {
		t.Fatal("disks created despite DisableDisks")
	}
	trace := workload.GenerateTrace(workload.TraceConfig{Queries: 500, Rate: 2000, Seed: 1})
	n.ReplayTrace(trace, 0)
	drain(eng, trace)
	if n.Server.Completed != 500 {
		t.Fatalf("completed = %d/500 without disks", n.Server.Completed)
	}
}
